package loops

import (
	"fmt"
	"sort"

	"ncdrf/internal/ddg"
	"ncdrf/internal/lir"
)

// Kernel is one corpus entry: a named LIR source with its trip count
// baked into the header.
type Kernel struct {
	Name string
	Src  string
}

// kernelSrcs holds the curated corpus: classic floating-point inner loops
// (Livermore kernels, BLAS bodies, stencils, recurrences and a few mixed
// kernels exercising conversions and divisions). All are single basic
// blocks, as the paper's methodology requires.
var kernelSrcs = []Kernel{
	{"lfk1-hydro", `
loop lfk1-hydro trips 400
invariant q r t
z10 = load z
z11 = load z
y1  = load y
m1  = fmul r, z10
m2  = fmul t, z11
a1  = fadd m1, m2
m3  = fmul y1, a1
a2  = fadd q, m3
store x, a2
`},
	{"lfk2-iccg", `
loop lfk2-iccg trips 250
v1 = load v
x1 = load x
m1 = fmul v1, r1@1
r1 = fsub x1, m1
store x, r1
`},
	{"lfk3-inner-product", `
loop lfk3-inner-product trips 1000
z1 = load z
x1 = load x
m1 = fmul z1, x1
s1 = fadd s1@1, m1
`},
	{"lfk4-banded", `
loop lfk4-banded trips 300
invariant scale
y1 = load y
x1 = load x
m1 = fmul y1, scale
s1 = fsub x1, m1
m2 = fmul s1, y1
a1 = fadd acc@1, m2
acc = fadd a1, x1
store x, s1
`},
	{"lfk5-tridiag", `
loop lfk5-tridiag trips 500
z1 = load z
y1 = load y
s1 = fsub y1, x1@1
x1 = fmul z1, s1
store x, x1
`},
	{"lfk6-linear-recurrence", `
loop lfk6-linear-recurrence trips 200
b1 = load b
w1 = fmul b1, w2@1
w2 = fadd w1, w3@2
w3 = fadd w2, b1
store w, w3
`},
	{"lfk7-eos", `
loop lfk7-eos trips 996
invariant r t q
u0 = load u
z0 = load z
y0 = load y
u1 = load u
u2 = load u
u3 = load u
u4 = load u
u5 = load u
u6 = load u
m1 = fmul r, y0
a1 = fadd z0, m1
m2 = fmul r, a1
a2 = fadd u0, m2
m3 = fmul r, u1
a3 = fadd u2, m3
m4 = fmul r, a3
a4 = fadd u3, m4
m5 = fmul q, u4
a5 = fadd u5, m5
m6 = fmul q, a5
a6 = fadd u6, m6
m7 = fmul t, a6
a7 = fadd a4, m7
m8 = fmul t, a7
a8 = fadd a2, m8
store x, a8
`},
	{"lfk9-integrate", `
loop lfk9-integrate trips 100
invariant c0 c1 c2 c3 c4 c5
p1 = load px
p2 = load px
p3 = load px
p4 = load px
p5 = load px
p6 = load px
m1 = fmul c0, p1
m2 = fmul c1, p2
m3 = fmul c2, p3
m4 = fmul c3, p4
m5 = fmul c4, p5
m6 = fmul c5, p6
a1 = fadd m1, m2
a2 = fadd m3, m4
a3 = fadd m5, m6
a4 = fadd a1, a2
a5 = fadd a4, a3
store px, a5
`},
	{"lfk10-diff-predictors", `
loop lfk10-diff-predictors trips 100
cx = load cx
p0 = load px
d1 = fsub cx, p0
p1 = load px
d2 = fsub d1, p1
p2 = load px
d3 = fsub d2, p2
p3 = load px
d4 = fsub d3, p3
store px, d1
store dx, d4
`},
	{"lfk11-first-sum", `
loop lfk11-first-sum trips 1000
x1 = load x
s1 = fadd s1@1, x1
store y, s1
`},
	{"lfk12-first-diff", `
loop lfk12-first-diff trips 1000
y1 = load y
y2 = load y
d1 = fsub y2, y1
store x, d1
`},
	{"daxpy", `
loop daxpy trips 1000
invariant a
x1 = load x
m1 = fmul a, x1
y1 = load y
a1 = fadd m1, y1
store y, a1
`},
	{"dscal", `
loop dscal trips 800
invariant a
x1 = load x
m1 = fmul a, x1
store x, m1
`},
	{"dcopy-scale2", `
loop dcopy-scale2 trips 600
x1 = load x
m1 = fmul x1, 2.0
store y, m1
`},
	{"drot", `
loop drot trips 500
invariant c s
x1 = load x
y1 = load y
m1 = fmul c, x1
m2 = fmul s, y1
a1 = fadd m1, m2
m3 = fmul c, y1
m4 = fmul s, x1
s1 = fsub m3, m4
store x, a1
store y, s1
`},
	{"dgemv-inner", `
loop dgemv-inner trips 400
a1 = load a
x1 = load x
m1 = fmul a1, x1
s1 = fadd s1@1, m1
`},
	{"dger-update", `
loop dger-update trips 300
invariant alpha yj
a1 = load a
x1 = load x
m1 = fmul alpha, x1
m2 = fmul m1, yj
a2 = fadd a1, m2
store a, a2
`},
	{"jacobi3", `
loop jacobi3 trips 700
invariant third
x0 = load x
x1 = load x
x2 = load x
a1 = fadd x0, x1
a2 = fadd a1, x2
m1 = fmul a2, third
store y, m1
`},
	{"stencil5", `
loop stencil5 trips 500
invariant w0 w1 w2
x0 = load x
x1 = load x
x2 = load x
x3 = load x
x4 = load x
m0 = fmul w0, x2
m1 = fmul w1, x1
m2 = fmul w1, x3
m3 = fmul w2, x0
m4 = fmul w2, x4
a1 = fadd m1, m2
a2 = fadd m3, m4
a3 = fadd a1, a2
a4 = fadd m0, a3
store y, a4
`},
	{"horner3", `
loop horner3 trips 900
invariant c0 c1 c2 c3
x1 = load x
m1 = fmul c3, x1
a1 = fadd m1, c2
m2 = fmul a1, x1
a2 = fadd m2, c1
m3 = fmul a2, x1
a3 = fadd m3, c0
store y, a3
`},
	{"cmul", `
loop cmul trips 450
ar = load ar
ai = load ai
br = load br
bi = load bi
m1 = fmul ar, br
m2 = fmul ai, bi
m3 = fmul ar, bi
m4 = fmul ai, br
re = fsub m1, m2
im = fadd m3, m4
store cr, re
store ci, im
`},
	{"normalize-div", `
loop normalize-div trips 350
x1 = load x
n1 = load norm
d1 = fdiv x1, n1
store y, d1
`},
	{"reciprocal-series", `
loop reciprocal-series trips 220
invariant one
x1 = load x
d1 = fdiv one, x1
m1 = fmul d1, d1
a1 = fadd d1, m1
store y, a1
`},
	{"int-to-float-scale", `
loop int-to-float-scale trips 640
invariant h
i1 = load idx
c1 = conv i1
m1 = fmul c1, h
store t, m1
`},
	{"mixed-conv-acc", `
loop mixed-conv-acc trips 380
i1 = load idx
c1 = conv i1
x1 = load x
m1 = fmul c1, x1
s1 = fadd s1@1, m1
store y, s1
`},
	{"euler-step", `
loop euler-step trips 480
invariant dt
u1 = load u
f1 = load f
m1 = fmul dt, f1
a1 = fadd u1, m1
store u, a1
`},
	{"leapfrog", `
loop leapfrog trips 360
invariant dt half
v1 = load v
a1 = load acc
x1 = load x
m1 = fmul dt, a1
v2 = fadd v1, m1
m2 = fmul half, v2
m3 = fmul dt, m2
x2 = fadd x1, m3
store v, v2
store x, x2
`},
	{"pressure-gradient", `
loop pressure-gradient trips 410
invariant idx2
p0 = load p
p1 = load p
p2 = load p
d1 = fsub p2, p0
m1 = fmul d1, idx2
a1 = fadd p1, m1
store g, a1
`},
	{"sum-of-squares", `
loop sum-of-squares trips 950
x1 = load x
m1 = fmul x1, x1
s1 = fadd s1@1, m1
`},
	{"weighted-average3", `
loop weighted-average3 trips 520
invariant wa wb wc
a1 = load a
b1 = load b
c1 = load c
m1 = fmul wa, a1
m2 = fmul wb, b1
m3 = fmul wc, c1
a2 = fadd m1, m2
a3 = fadd a2, m3
store o, a3
`},
	{"state-update-2", `
loop state-update-2 trips 330
invariant k1 k2
s0 = load s
u0 = load u
m1 = fmul k1, p1@1
m2 = fmul k2, u0
p1 = fadd s0, m1
a2 = fadd p1, m2
store s, a2
`},
	{"convolution4", `
loop convolution4 trips 280
invariant h0 h1 h2 h3
x0 = load x
x1 = load x
x2 = load x
x3 = load x
m0 = fmul h0, x0
m1 = fmul h1, x1
m2 = fmul h2, x2
m3 = fmul h3, x3
a0 = fadd m0, m1
a1 = fadd m2, m3
a2 = fadd a0, a1
store y, a2
`},
	{"rk2-stage", `
loop rk2-stage trips 240
invariant dt half
y1 = load y
k1 = load k
m1 = fmul dt, k1
m2 = fmul half, m1
a1 = fadd y1, m2
m3 = fmul dt, a1
a2 = fadd y1, m3
store y, a2
`},
	{"logistic-map", `
loop logistic-map trips 150
invariant rconst one
x0 = load x
s1 = fsub one, x0
m1 = fmul x0, s1
m2 = fmul rconst, m1
store x, m2
`},
	{"damped-oscillator", `
loop damped-oscillator trips 260
invariant damp spring dt
x0 = load x
v0 = load v
m1 = fmul spring, x0
m2 = fmul damp, v0
a1 = fadd m1, m2
m3 = fmul dt, a1
v1 = fsub v0, m3
m4 = fmul dt, v1
x1 = fadd x0, m4
store x, x1
store v, v1
`},
	{"dot4-unrolled", `
loop dot4-unrolled trips 250
a0 = load a
a1 = load a
a2 = load a
a3 = load a
b0 = load b
b1 = load b
b2 = load b
b3 = load b
m0 = fmul a0, b0
m1 = fmul a1, b1
m2 = fmul a2, b2
m3 = fmul a3, b3
s0 = fadd m0, m1
s1 = fadd m2, m3
s2 = fadd s0, s1
acc = fadd acc@1, s2
`},
	{"prefix-product", `
loop prefix-product trips 180
x1 = load x
p1 = fmul p1@1, x1
store y, p1
`},
	{"exp-taylor4", `
loop exp-taylor4 trips 210
invariant inv2 inv6 inv24 one
x1 = load x
x2 = fmul x1, x1
x3 = fmul x2, x1
x4 = fmul x3, x1
t2 = fmul x2, inv2
t3 = fmul x3, inv6
t4 = fmul x4, inv24
a1 = fadd one, x1
a2 = fadd t2, t3
a3 = fadd a2, t4
a4 = fadd a1, a3
store y, a4
`},
	{"saxpy-strided-pair", `
loop saxpy-strided-pair trips 370
invariant a
x0 = load x
x1 = load x
y0 = load y
y1 = load y
m0 = fmul a, x0
m1 = fmul a, x1
s0 = fadd y0, m0
s1 = fadd y1, m1
store y, s0
store y, s1
`},
	{"inplace-smooth", `
loop inplace-smooth trips 430
invariant half
L0: c1 = load buf
a1 = fadd c1, prev@1
m1 = fmul half, a1
prev = fadd m1, 0.0
S0: store buf, m1
mem S0 L0 1
`},
	{"gather-accumulate", `
loop gather-accumulate trips 190
idx = load index
v1 = conv idx
x1 = load x
m1 = fmul v1, x1
s1 = fadd s1@1, m1
store out, s1
`},
	{"division-chain", `
loop division-chain trips 160
a1 = load a
b1 = load b
d1 = fdiv a1, b1
d2 = fdiv d1, q1@1
q1 = fadd d2, b1
store q, q1
`},
	{"big-expression", `
loop big-expression trips 140
invariant k0 k1 k2 k3
x0 = load x
x1 = load x
x2 = load x
x3 = load x
x4 = load x
x5 = load x
m0 = fmul k0, x0
m1 = fmul k1, x1
m2 = fmul k2, x2
m3 = fmul k3, x3
m4 = fmul x4, x5
a0 = fadd m0, m1
a1 = fadd m2, m3
a2 = fadd a0, a1
a3 = fadd a2, m4
m5 = fmul a3, a3
a4 = fadd a3, m5
store y, a4
`},
	{"triad-pair", `
loop triad-pair trips 620
invariant s
a0 = load a
b0 = load b
c0 = load c
m0 = fmul s, c0
t0 = fadd b0, m0
m1 = fmul t0, a0
store a, m1
`},
}

// Kernels compiles the whole curated corpus to dependence graphs. The
// result is freshly built on every call so callers may mutate the graphs.
func Kernels() []*ddg.Graph {
	out := make([]*ddg.Graph, 0, len(kernelSrcs))
	for _, k := range kernelSrcs {
		g, err := lir.Compile(k.Src)
		if err != nil {
			panic(fmt.Sprintf("loops: kernel %s: %v", k.Name, err))
		}
		out = append(out, g)
	}
	return out
}

// KernelNames returns the sorted names of the curated kernels.
func KernelNames() []string {
	names := make([]string, 0, len(kernelSrcs))
	for _, k := range kernelSrcs {
		names = append(names, k.Name)
	}
	sort.Strings(names)
	return names
}

// KernelByName compiles a single kernel, or returns false.
func KernelByName(name string) (*ddg.Graph, bool) {
	for _, k := range kernelSrcs {
		if k.Name == name {
			return lir.MustCompile(k.Src), true
		}
	}
	return nil, false
}
