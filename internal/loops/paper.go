// Package loops provides the loop corpus: the paper's worked example and a
// curated set of classic floating-point kernels expressed in LIR, each
// with a representative trip count for dynamic weighting.
package loops

import (
	"ncdrf/internal/ddg"
	"ncdrf/internal/lir"
)

// PaperExampleSrc is the section 4 example loop of the paper,
// reconstructed from Figure 2 and Tables 2-4:
//
//	DO I=1,N
//	  y(I) = (x(I)*t + y(I))*r + x(I)
//	ENDDO
//
// Two loads (L1 of x, L2 of y), a multiply M3 (x*t), add A4 (+y),
// multiply M5 (*r), add A6 (+x) and the store S7. t and r are loop
// invariants kept in the general register file.
const PaperExampleSrc = `
loop paper-example trips 100
invariant t r
L1: x  = load x
L2: y  = load y
M3: v3 = fmul x, t
A4: v4 = fadd v3, y
M5: v5 = fmul v4, r
A6: v6 = fadd v5, x
S7: store y, v6
`

// PaperExample returns a fresh DDG of the section 4 example loop.
func PaperExample() *ddg.Graph {
	return lir.MustCompile(PaperExampleSrc)
}
