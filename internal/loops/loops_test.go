package loops

import (
	"testing"

	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
)

func TestPaperExampleShape(t *testing.T) {
	g := PaperExample()
	if g.NumNodes() != 7 {
		t.Fatalf("nodes = %d, want 7", g.NumNodes())
	}
	if g.CountOps(ddg.LOAD) != 2 || g.CountOps(ddg.STORE) != 1 {
		t.Fatal("wrong memory op counts")
	}
	if g.CountOps(ddg.FMUL) != 2 || g.CountOps(ddg.FADD) != 2 {
		t.Fatal("wrong arithmetic op counts")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dependence shape of Figure 2b.
	l1 := g.NodeByName("L1")
	cons := g.Consumers(l1.ID)
	if len(cons) != 2 {
		t.Fatalf("L1 consumers = %v, want M3 and A6", cons)
	}
}

func TestKernelsAllCompileAndValidate(t *testing.T) {
	ks := Kernels()
	if len(ks) < 40 {
		t.Fatalf("corpus has %d kernels, want >= 40", len(ks))
	}
	seen := map[string]bool{}
	for _, g := range ks {
		if seen[g.LoopName] {
			t.Fatalf("duplicate kernel name %s", g.LoopName)
		}
		seen[g.LoopName] = true
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.LoopName, err)
		}
		if g.Trips < 1 {
			t.Fatalf("%s: missing trip count", g.LoopName)
		}
	}
}

func TestKernelsAllSchedulable(t *testing.T) {
	machines := []*machine.Config{machine.Eval(3), machine.Eval(6), machine.PxLy(1, 3), machine.PxLy(2, 6)}
	for _, g := range Kernels() {
		for _, m := range machines {
			s, err := sched.Run(g, m, sched.Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", g.LoopName, m.Name(), err)
			}
			lts := lifetime.Compute(s)
			for _, l := range lts {
				if l.Len() <= 0 {
					t.Fatalf("%s: non-positive lifetime %v", g.LoopName, l)
				}
			}
		}
	}
}

func TestKernelByName(t *testing.T) {
	g, ok := KernelByName("daxpy")
	if !ok || g.LoopName != "daxpy" {
		t.Fatal("KernelByName(daxpy) failed")
	}
	if _, ok := KernelByName("no-such-kernel"); ok {
		t.Fatal("unknown kernel must return false")
	}
}

func TestKernelNamesSorted(t *testing.T) {
	names := KernelNames()
	if len(names) != len(Kernels()) {
		t.Fatal("name count mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted/unique at %d: %s >= %s", i, names[i-1], names[i])
		}
	}
}

func TestKernelsAreFreshCopies(t *testing.T) {
	a := Kernels()
	b := Kernels()
	a[0].AddNode(ddg.FADD, "mutation")
	if b[0].NumNodes() == a[0].NumNodes() {
		t.Fatal("Kernels() returned shared graphs")
	}
}
