// Package ncdrf is a library reproduction of "Non-Consistent Dual
// Register Files to Reduce Register Pressure" (J. Llosa, M. Valero,
// E. Ayguadé, HPCA 1995).
//
// The paper proposes implementing a VLIW processor's floating-point
// register file as two independently addressed subfiles, one per cluster
// of functional units: values consumed by both clusters are replicated in
// both subfiles ("global" values), values consumed by a single cluster
// are stored only there ("local" values). Because most register instances
// are read exactly once, most values are local, so the organization holds
// almost twice the values of a consistent dual file at identical area and
// access time. A greedy post-scheduling pass that swaps same-cycle
// operations between clusters reduces the register requirements further.
//
// This package is the public facade over the staged compilation pipeline
// (internal/pipeline): a loop is parsed once, modulo-scheduled once per
// machine, its lifetimes analysed once, and every register-file model is
// then classified, allocated and spilled on top of those shared immutable
// base artifacts:
//
//   - ParseLoop compiles a textual loop (LIR) into a dependence graph;
//   - Compile runs the staged pipeline for one loop under one model;
//   - CompileAll evaluates all four models over one shared base schedule,
//     so the scheduler and lifetime analysis run once instead of per model;
//   - Requirements reports the register needs of all models at once;
//   - Experiments regenerates every table and figure of the paper.
//
// See the examples directory for runnable walkthroughs and DESIGN.md for
// the stage graph, artifact ownership rules and cache-key scheme.
package ncdrf

import (
	"context"
	"fmt"
	"io"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/lir"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/pipeline"
	"ncdrf/internal/sched"
	"ncdrf/internal/vm"
)

// Model selects a register-file organization (the four models of the
// paper's evaluation).
type Model int

const (
	// Ideal is an infinite register file (performance upper bound).
	Ideal Model = iota
	// Unified is a single register file reachable by every functional
	// unit; it also models the consistent (POWER2-style) dual file.
	Unified
	// Partitioned is the non-consistent dual register file.
	Partitioned
	// Swapped is Partitioned plus the greedy operation-swapping pass.
	Swapped

	// NumModels is the number of register-file models; CompileAll returns
	// one Result per model, indexed by Model.
	NumModels = core.NumModels
)

// Models lists all models in the paper's presentation order.
var Models = []Model{Ideal, Unified, Partitioned, Swapped}

// String returns the paper's name for the model, or "Model(n)" for an
// out-of-range value.
func (m Model) String() string {
	cm, err := m.internal()
	if err != nil {
		return fmt.Sprintf("Model(%d)", int(m))
	}
	return cm.String()
}

func (m Model) internal() (core.Model, error) {
	switch m {
	case Ideal:
		return core.Ideal, nil
	case Unified:
		return core.Unified, nil
	case Partitioned:
		return core.Partitioned, nil
	case Swapped:
		return core.Swapped, nil
	default:
		return 0, fmt.Errorf("ncdrf: invalid model Model(%d): valid models are Ideal, Unified, Partitioned and Swapped", int(m))
	}
}

// Loop is a compiled loop body: a single-basic-block data-dependence
// graph plus a trip count.
type Loop struct {
	g *ddg.Graph
}

// ParseLoop compiles LIR source text into a Loop. See the lir package
// documentation (internal/lir) for the grammar; in short:
//
//	loop daxpy trips 1000
//	invariant a
//	x1 = load x
//	m1 = fmul a, x1
//	y1 = load y
//	s1 = fadd m1, y1
//	store y, s1
func ParseLoop(src string) (*Loop, error) {
	g, err := lir.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Loop{g: g}, nil
}

// PaperExample returns the worked example loop of section 4 of the paper.
func PaperExample() *Loop { return &Loop{g: loops.PaperExample()} }

// KernelLoop returns a curated corpus kernel by name.
func KernelLoop(name string) (*Loop, error) {
	g, ok := loops.KernelByName(name)
	if !ok {
		return nil, fmt.Errorf("ncdrf: unknown kernel %q", name)
	}
	return &Loop{g: g}, nil
}

// KernelNames lists the curated corpus kernels.
func KernelNames() []string { return loops.KernelNames() }

// Name returns the loop's name.
func (l *Loop) Name() string { return l.g.LoopName }

// Ops returns the number of operations in the loop body.
func (l *Loop) Ops() int { return l.g.NumNodes() }

// Trips returns the loop's trip count used for dynamic weighting.
func (l *Loop) Trips() int64 { return l.g.TripsOrOne() }

// DOT writes the loop's dependence graph in Graphviz format.
func (l *Loop) DOT(w io.Writer) error { return l.g.DOT(w) }

// Machine describes a clustered VLIW target.
type Machine struct {
	cfg *machine.Config
}

// EvalMachine returns the paper's evaluation machine (section 5.2): two
// clusters of {1 FP adder, 1 FP multiplier, 1 load/store unit}, with the
// given floating-point latency (the paper uses 3 and 6) and single-cycle
// memory.
func EvalMachine(latency int) Machine { return Machine{cfg: machine.Eval(latency)} }

// ExampleMachine returns the section 4 example machine: two clusters of
// {1 adder, 1 multiplier, 2 load/store units}, latency 3/3/1.
func ExampleMachine() Machine { return Machine{cfg: machine.Example()} }

// TableMachine returns the Table 1 configuration PxLy: x adders and x
// multipliers of latency y, one store and two load ports, unified.
func TableMachine(x, y int) Machine { return Machine{cfg: machine.PxLy(x, y)} }

// NewMachine builds a custom clustered machine. clusters[i] gives the
// {adders, multipliers, memory ports} of cluster i.
func NewMachine(name string, clusters [][3]int, addLat, mulLat, memLat int) (Machine, error) {
	specs := make([]machine.ClusterSpec, len(clusters))
	for i, c := range clusters {
		specs[i] = machine.ClusterSpec{Adders: c[0], Multipliers: c[1], MemPorts: c[2]}
	}
	cfg, err := machine.New(name, specs, addLat, mulLat, memLat)
	if err != nil {
		return Machine{}, err
	}
	return Machine{cfg: cfg}, nil
}

// String describes the machine.
func (m Machine) String() string { return m.cfg.String() }

// Result is the outcome of compiling one loop under one model.
type Result struct {
	// Model is the register-file organization used.
	Model Model
	// II is the achieved initiation interval in cycles.
	II int
	// Registers is the register requirement of the final schedule
	// (per subfile for the dual organizations); 0 for Ideal.
	Registers int
	// SpilledValues is the number of values the spiller pushed to
	// memory to make the loop fit.
	SpilledValues int
	// MemOps is the number of memory operations per iteration,
	// including spill code.
	MemOps int
	// Cycles is the steady-state execution time (II * trips).
	Cycles int64

	final *sched.Schedule
}

// Kernel renders the steady-state kernel of the final schedule. The
// rendering is built lazily, on demand: most consumers (sweeps, figure
// runners) never print it, and building it eagerly for every work unit
// was measurable overhead. It returns "" on a Result not produced by
// Compile or CompileAll (which is the only way to obtain a full one).
func (r *Result) Kernel() string {
	if r.final == nil {
		return ""
	}
	return r.final.Kernel()
}

// newResult shapes one staged per-model outcome for the public facade,
// running the (lazy) measurement stage: the facade reports Registers, so
// it pays for the measurement; bulk consumers (sweeps, figures) do not.
func newResult(l *Loop, model Model, mr *pipeline.ModelResult) (*Result, error) {
	req, final, err := mr.Requirement()
	if err != nil {
		return nil, err
	}
	return &Result{
		Model:         model,
		II:            final.II,
		Registers:     req,
		SpilledValues: mr.SpilledValues,
		MemOps:        mr.MemOps(),
		Cycles:        int64(final.II) * l.g.TripsOrOne(),
		final:         final,
	}, nil
}

// Compile runs the staged pipeline for one loop under one model: modulo
// scheduling, value classification, rotating register allocation under
// the model, and the naive spill loop when regs registers (per subfile)
// do not suffice. regs <= 0 means unlimited. To evaluate several models
// of the same loop, CompileAll shares the scheduling work between them.
func Compile(l *Loop, m Machine, model Model, regs int) (*Result, error) {
	cm, err := model.internal()
	if err != nil {
		return nil, err
	}
	b, err := pipeline.NewBase(l.g, m.cfg, sched.Options{})
	if err != nil {
		return nil, err
	}
	//lint:allow ctxflow -- Compile is the documented ctx-free facade; CompileAll is the threaded form
	mr, err := pipeline.Evaluate(context.Background(), nil, b, cm, regs)
	if err != nil {
		return nil, err
	}
	return newResult(l, model, mr)
}

// CompileAll evaluates every register-file model of the loop over one
// shared base stage: the modulo schedule and the lifetime analysis are
// computed once and all four models are classified, allocated and (if
// needed) spilled on top of them. The result is indexed by Model. ctx
// cancels the evaluation between pipeline stages and spill rounds.
func CompileAll(ctx context.Context, l *Loop, m Machine, regs int) ([NumModels]*Result, error) {
	var out [NumModels]*Result
	mrs, err := pipeline.CompileAll(ctx, nil, l.g, m.cfg, regs)
	if err != nil {
		return out, err
	}
	for i, mr := range mrs {
		if out[i], err = newResult(l, Model(i), mr); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Verify compiles the loop under the model (spilling at the given file
// size, 0 = unlimited), executes the result on simulated rotating
// register files — unified or non-consistent dual, per the model — for
// iters iterations, and compares every stored value bit-for-bit against
// a sequential reference execution of the original loop. A nil return
// certifies the schedule, the allocation, the classification and any
// spill code for this loop.
func Verify(l *Loop, m Machine, model Model, regs, iters int) error {
	cm, err := model.internal()
	if err != nil {
		return err
	}
	return vm.VerifyModel(l.g, m.cfg, cm, regs, iters)
}

// Requirements returns the unlimited-register requirement of the loop
// under every model (Ideal maps to 0), plus the schedule's II. It is a
// thin wrapper over the base stage: one schedule, one lifetime analysis,
// four classification/allocation passes.
func Requirements(l *Loop, m Machine) (map[Model]int, int, error) {
	b, err := pipeline.NewBase(l.g, m.cfg, sched.Options{})
	if err != nil {
		return nil, 0, err
	}
	out := make(map[Model]int, len(Models))
	for _, model := range Models {
		cm, _ := model.internal() // Models holds only valid models
		req, _, err := b.Requirement(cm)
		if err != nil {
			return nil, 0, err
		}
		out[model] = req
	}
	return out, b.Sched.II, nil
}
