// Package ncdrf is a library reproduction of "Non-Consistent Dual
// Register Files to Reduce Register Pressure" (J. Llosa, M. Valero,
// E. Ayguadé, HPCA 1995).
//
// The paper proposes implementing a VLIW processor's floating-point
// register file as two independently addressed subfiles, one per cluster
// of functional units: values consumed by both clusters are replicated in
// both subfiles ("global" values), values consumed by a single cluster
// are stored only there ("local" values). Because most register instances
// are read exactly once, most values are local, so the organization holds
// almost twice the values of a consistent dual file at identical area and
// access time. A greedy post-scheduling pass that swaps same-cycle
// operations between clusters reduces the register requirements further.
//
// This package is the public facade over the full pipeline:
//
//   - ParseLoop compiles a textual loop (LIR) into a dependence graph;
//   - Compile modulo-schedules a loop onto a machine, classifies and
//     allocates its values under a register-file model, and spills when
//     the file is too small;
//   - Requirements reports the register needs of all models at once;
//   - Experiments regenerates every table and figure of the paper.
//
// See the examples directory for runnable walkthroughs and DESIGN.md for
// the system inventory.
package ncdrf

import (
	"fmt"
	"io"

	"ncdrf/internal/core"
	"ncdrf/internal/ddg"
	"ncdrf/internal/lifetime"
	"ncdrf/internal/lir"
	"ncdrf/internal/loops"
	"ncdrf/internal/machine"
	"ncdrf/internal/sched"
	"ncdrf/internal/spill"
	"ncdrf/internal/vm"
)

// Model selects a register-file organization (the four models of the
// paper's evaluation).
type Model int

const (
	// Ideal is an infinite register file (performance upper bound).
	Ideal Model = iota
	// Unified is a single register file reachable by every functional
	// unit; it also models the consistent (POWER2-style) dual file.
	Unified
	// Partitioned is the non-consistent dual register file.
	Partitioned
	// Swapped is Partitioned plus the greedy operation-swapping pass.
	Swapped
)

// Models lists all models in the paper's presentation order.
var Models = []Model{Ideal, Unified, Partitioned, Swapped}

// String returns the paper's name for the model.
func (m Model) String() string { return m.internal().String() }

func (m Model) internal() core.Model {
	switch m {
	case Ideal:
		return core.Ideal
	case Unified:
		return core.Unified
	case Partitioned:
		return core.Partitioned
	case Swapped:
		return core.Swapped
	default:
		panic(fmt.Sprintf("ncdrf: invalid model %d", int(m)))
	}
}

// Loop is a compiled loop body: a single-basic-block data-dependence
// graph plus a trip count.
type Loop struct {
	g *ddg.Graph
}

// ParseLoop compiles LIR source text into a Loop. See the lir package
// documentation (internal/lir) for the grammar; in short:
//
//	loop daxpy trips 1000
//	invariant a
//	x1 = load x
//	m1 = fmul a, x1
//	y1 = load y
//	s1 = fadd m1, y1
//	store y, s1
func ParseLoop(src string) (*Loop, error) {
	g, err := lir.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Loop{g: g}, nil
}

// PaperExample returns the worked example loop of section 4 of the paper.
func PaperExample() *Loop { return &Loop{g: loops.PaperExample()} }

// KernelLoop returns a curated corpus kernel by name.
func KernelLoop(name string) (*Loop, error) {
	g, ok := loops.KernelByName(name)
	if !ok {
		return nil, fmt.Errorf("ncdrf: unknown kernel %q", name)
	}
	return &Loop{g: g}, nil
}

// KernelNames lists the curated corpus kernels.
func KernelNames() []string { return loops.KernelNames() }

// Name returns the loop's name.
func (l *Loop) Name() string { return l.g.LoopName }

// Ops returns the number of operations in the loop body.
func (l *Loop) Ops() int { return l.g.NumNodes() }

// Trips returns the loop's trip count used for dynamic weighting.
func (l *Loop) Trips() int64 { return l.g.TripsOrOne() }

// DOT writes the loop's dependence graph in Graphviz format.
func (l *Loop) DOT(w io.Writer) error { return l.g.DOT(w) }

// Machine describes a clustered VLIW target.
type Machine struct {
	cfg *machine.Config
}

// EvalMachine returns the paper's evaluation machine (section 5.2): two
// clusters of {1 FP adder, 1 FP multiplier, 1 load/store unit}, with the
// given floating-point latency (the paper uses 3 and 6) and single-cycle
// memory.
func EvalMachine(latency int) Machine { return Machine{cfg: machine.Eval(latency)} }

// ExampleMachine returns the section 4 example machine: two clusters of
// {1 adder, 1 multiplier, 2 load/store units}, latency 3/3/1.
func ExampleMachine() Machine { return Machine{cfg: machine.Example()} }

// TableMachine returns the Table 1 configuration PxLy: x adders and x
// multipliers of latency y, one store and two load ports, unified.
func TableMachine(x, y int) Machine { return Machine{cfg: machine.PxLy(x, y)} }

// NewMachine builds a custom clustered machine. clusters[i] gives the
// {adders, multipliers, memory ports} of cluster i.
func NewMachine(name string, clusters [][3]int, addLat, mulLat, memLat int) (Machine, error) {
	specs := make([]machine.ClusterSpec, len(clusters))
	for i, c := range clusters {
		specs[i] = machine.ClusterSpec{Adders: c[0], Multipliers: c[1], MemPorts: c[2]}
	}
	cfg, err := machine.New(name, specs, addLat, mulLat, memLat)
	if err != nil {
		return Machine{}, err
	}
	return Machine{cfg: cfg}, nil
}

// String describes the machine.
func (m Machine) String() string { return m.cfg.String() }

// Result is the outcome of compiling one loop under one model.
type Result struct {
	// Model is the register-file organization used.
	Model Model
	// II is the achieved initiation interval in cycles.
	II int
	// Registers is the register requirement of the final schedule
	// (per subfile for the dual organizations); 0 for Ideal.
	Registers int
	// SpilledValues is the number of values the spiller pushed to
	// memory to make the loop fit.
	SpilledValues int
	// MemOps is the number of memory operations per iteration,
	// including spill code.
	MemOps int
	// Cycles is the steady-state execution time (II * trips).
	Cycles int64
	// Kernel is a printable rendering of the steady-state kernel.
	Kernel string
}

// Compile runs the full pipeline for one loop: modulo scheduling, value
// classification, rotating register allocation under the model, and the
// naive spill loop when regs registers (per subfile) do not suffice.
// regs <= 0 means unlimited.
func Compile(l *Loop, m Machine, model Model, regs int) (*Result, error) {
	cm := model.internal()
	res, err := spill.Run(l.g, m.cfg, regsFor(model, regs), core.Fit(cm), sched.Options{})
	if err != nil {
		return nil, err
	}
	lts := lifetime.Compute(res.Sched)
	req := 0
	final := res.Sched
	if model != Ideal {
		req, final, err = core.Requirement(cm, res.Sched, lts)
		if err != nil {
			return nil, err
		}
	}
	return &Result{
		Model:         model,
		II:            final.II,
		Registers:     req,
		SpilledValues: res.SpilledValues,
		MemOps:        res.MemOps(),
		Cycles:        int64(final.II) * l.g.TripsOrOne(),
		Kernel:        final.Kernel(),
	}, nil
}

func regsFor(model Model, regs int) int {
	if model == Ideal {
		return 0
	}
	return regs
}

// Verify compiles the loop under the model (spilling at the given file
// size, 0 = unlimited), executes the result on simulated rotating
// register files — unified or non-consistent dual, per the model — for
// iters iterations, and compares every stored value bit-for-bit against
// a sequential reference execution of the original loop. A nil return
// certifies the schedule, the allocation, the classification and any
// spill code for this loop.
func Verify(l *Loop, m Machine, model Model, regs, iters int) error {
	return vm.VerifyModel(l.g, m.cfg, model.internal(), regs, iters)
}

// Requirements returns the unlimited-register requirement of the loop
// under every model (Ideal maps to 0), plus the schedule's II.
func Requirements(l *Loop, m Machine) (map[Model]int, int, error) {
	s, err := sched.Run(l.g, m.cfg, sched.Options{})
	if err != nil {
		return nil, 0, err
	}
	lts := lifetime.Compute(s)
	out := make(map[Model]int, len(Models))
	for _, model := range Models {
		req, _, err := core.Requirement(model.internal(), s, lts)
		if err != nil {
			return nil, 0, err
		}
		out[model] = req
	}
	return out, s.II, nil
}
